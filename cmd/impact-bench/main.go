// Command impact-bench is a concurrent load generator for impact-server,
// driving the typed v1 API through the pkg/client SDK (retries disabled —
// a load generator must observe failures, not paper over them). It fires
// a configurable mix of POST /v1/run and GET /v1/figures/{id} requests
// from a pool of workers and reports QPS, client-observed cache hit rate,
// and latency percentiles (p50/p90/p99, estimated from internal/metrics
// fixed-bucket histograms) as text or JSON.
//
// The run mix can be split cold/warm: a warm request repeats the base spec
// (content-addressed, so it is served from the result cache after the
// first computation), while a cold request patches a unique noise.seed
// into the spec's config, forcing a fresh simulation. That makes the two
// ends of the serving spectrum — pure cache reads vs. full simulator
// sweeps — measurable in one run. Cold requests therefore require a
// config-sensitive scenario (the covert-* family).
//
//	impact-bench -addr http://localhost:8322 -workers 8 -duration 10s
//	impact-bench -inprocess -requests 64 -run-frac 0.5 -cold 0.1 -json
//
// With -jobs the run slice of the mix exercises the asynchronous job API
// instead of the synchronous /v1/run: each op submits the spec to POST
// /v1/jobs, drains the NDJSON result stream, and waits for the terminal
// status, classifying hit/miss from the job's cache counts.
//
// With -inprocess the tool spins up an exp.Server on a loopback listener
// and load-tests that, so a one-command smoke run needs no external
// server (make loadtest-smoke); -data-dir additionally backs the
// in-process server with a durable result store, which makes warm-restart
// behavior measurable by re-running the same command (make jobs-smoke).
// -smoke exits nonzero unless the run saw zero errors, nonzero QPS, and a
// nonzero cache hit rate.
//
// With -objects N the tool switches to the store object-count sweep: it
// opens the -store backend (pack or files) directly at -data-dir,
// preloads N synthetic content-addressed results, and times -gets random
// Get probes — the measurement behind docs/benchmark.md's pack-vs-files
// scaling table (see objsweep.go). In this mode -smoke demands zero
// Get misses.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/pkg/api"
	"repro/pkg/client"
)

// defaultSpec is the built-in quick-scale sweep used when -spec is not
// given: two unique runs, config-sensitive so -cold works.
const defaultSpec = `{
	"scenario": "covert-pnm",
	"scale": "quick",
	"grid": {"llc_bytes": [4194304, 8388608]}
}`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "impact-bench:", err)
		os.Exit(1)
	}
}

// opKind labels the two request types in the mix.
type opKind int

const (
	opRun opKind = iota
	opFigure
	opCount
)

var opNames = []string{"run", "figure"}

// Per-op counter slots inside the metrics.Groups blocks.
const (
	ctrRequests = iota
	ctrErrors
	ctrHit
	ctrMiss
	ctrPartial
)

// newBenchMetrics aggregates all workers' observations: one counter block
// and one latency histogram per op, all lock-free.
func newBenchMetrics() *metrics.Groups {
	return metrics.NewGroups(opNames, []string{"requests", "errors", "hit", "miss", "partial"},
		"latency_ns", metrics.LatencyBounds())
}

// config is the parsed flag set.
type config struct {
	base      string
	cluster   []string    // cluster mode: one base URL per node, load rotated
	spec      api.RunSpec // template for warm requests and cold variants
	figure    string
	workers   int
	duration  time.Duration
	requests  int64
	runFrac   float64
	coldFrac  float64
	jobs      bool
	jsonOut   bool
	smoke     bool
	dataDir   string
	storeKind string
	objects   int64 // object-sweep mode when > 0; see objsweep.go
	gets      int64
}

// run parses flags, drives the load, and prints the summary.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("impact-bench", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8322", "base URL of impact-server")
	specPath := fs.String("spec", "", "spec file for POST /v1/run (default: built-in 2-point covert-pnm sweep)")
	figure := fs.String("figure", "rowbuffer", "figure ID for GET /v1/figures/{id}")
	workers := fs.Int("workers", 8, "concurrent client workers")
	duration := fs.Duration("duration", 10*time.Second, "how long to fire (ignored when -requests > 0)")
	requests := fs.Int64("requests", 0, "total request budget (0 = run for -duration)")
	runFrac := fs.Float64("run-frac", 0.5, "fraction of requests that POST /v1/run (rest GET the figure)")
	coldFrac := fs.Float64("cold", 0, "fraction of run requests forced cold via a unique noise.seed config patch")
	jobs := fs.Bool("jobs", false, "drive run requests through the async job API (submit, stream, wait)")
	inprocess := fs.Bool("inprocess", false, "load-test an in-process server on a loopback listener")
	dataDir := fs.String("data-dir", "", "durable result store directory (with -inprocess or -objects)")
	storeKind := fs.String("store", "pack", "result store backend for -data-dir: pack or files")
	objects := fs.Int64("objects", 0, "object-sweep mode: preload N synthetic results into -data-dir and time random Gets")
	gets := fs.Int64("gets", 10000, "with -objects: number of random Get probes to time")
	jsonOut := fs.Bool("json", false, "print the summary as JSON")
	smoke := fs.Bool("smoke", false, "exit nonzero unless errors==0, QPS>0, and hit rate>0")
	clusterList := fs.String("cluster", "",
		"comma-separated base URLs of cluster nodes; workers rotate requests across them "+
			"and the summary adds per-node hit ratios (overrides -addr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("need at least 1 worker, got %d", *workers)
	}
	if *runFrac < 0 || *runFrac > 1 {
		return fmt.Errorf("-run-frac %v outside [0, 1]", *runFrac)
	}
	if *coldFrac < 0 || *coldFrac > 1 {
		return fmt.Errorf("-cold %v outside [0, 1]", *coldFrac)
	}
	if *requests < 0 {
		return fmt.Errorf("negative request budget %d", *requests)
	}
	if *requests == 0 && *duration <= 0 {
		return fmt.Errorf("need -requests > 0 or -duration > 0")
	}

	if *dataDir != "" && !*inprocess && *objects == 0 {
		return fmt.Errorf("-data-dir only applies with -inprocess or -objects (point -addr at a server started with its own -data-dir instead)")
	}
	if *objects < 0 || *gets < 0 {
		return fmt.Errorf("negative -objects/-gets")
	}

	var clusterAddrs []string
	if *clusterList != "" {
		if *inprocess {
			return fmt.Errorf("-cluster and -inprocess are mutually exclusive")
		}
		for _, a := range strings.Split(*clusterList, ",") {
			if a = strings.TrimSpace(a); a != "" {
				clusterAddrs = append(clusterAddrs, a)
			}
		}
		if len(clusterAddrs) == 0 {
			return fmt.Errorf("-cluster %q names no nodes", *clusterList)
		}
	}

	cfg := config{
		cluster:   clusterAddrs,
		figure:    *figure,
		workers:   *workers,
		duration:  *duration,
		requests:  *requests,
		runFrac:   *runFrac,
		coldFrac:  *coldFrac,
		jobs:      *jobs,
		jsonOut:   *jsonOut,
		smoke:     *smoke,
		dataDir:   *dataDir,
		storeKind: *storeKind,
		objects:   *objects,
		gets:      *gets,
	}

	// Object-sweep mode bypasses the HTTP path entirely; see objsweep.go.
	if cfg.objects > 0 {
		if *inprocess {
			return fmt.Errorf("-objects and -inprocess are mutually exclusive")
		}
		if cfg.dataDir == "" {
			return fmt.Errorf("-objects requires -data-dir")
		}
		return runObjectSweep(cfg, stdout)
	}
	specBlob := []byte(defaultSpec)
	if *specPath != "" {
		blob, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		specBlob = blob
	}
	var err error
	if cfg.spec, err = api.ParseRunSpec(specBlob); err != nil {
		return err
	}

	switch {
	case *inprocess:
		var engineOpts []exp.EngineOption
		if *dataDir != "" {
			store, closeStore, err := openBackend(cfg.storeKind, cfg.dataDir)
			if err != nil {
				return err
			}
			defer closeStore()
			engineOpts = append(engineOpts, exp.WithStore(store))
		}
		ts := httptest.NewServer(exp.NewServer(exp.NewEngine(engineOpts...)).Handler())
		defer ts.Close()
		cfg.base = ts.URL
	case len(cfg.cluster) > 0:
		cfg.base = strings.Join(cfg.cluster, ",")
	default:
		cfg.base = *addr
	}

	sum, err := drive(cfg)
	if err != nil {
		return err
	}
	if *inprocess {
		// The pool section only means something when this process owns the
		// whole server lifetime; against a remote server the counters would
		// mix in every other client's traffic.
		if doc, err := fetchMetrics(cfg.base); err == nil {
			sum.MachinePool = &doc.MachinePool
		}
	}
	if err := printSummary(stdout, cfg, sum); err != nil {
		return err
	}
	if cfg.smoke {
		total := sum.Total
		if total.Errors > 0 || total.QPS <= 0 || total.HitRate <= 0 {
			return fmt.Errorf("smoke check failed: errors=%d qps=%.1f hit_rate=%.3f",
				total.Errors, total.QPS, total.HitRate)
		}
		// In -json mode the verdict goes to stderr so stdout stays a single
		// machine-parseable document (the exit code carries pass/fail).
		dst := stdout
		if cfg.jsonOut {
			dst = os.Stderr
		}
		fmt.Fprintln(dst, "smoke: ok")
	}
	return nil
}

// coldSpec returns the base spec with a unique noise.seed patched into its
// config, so the run misses the content-addressed cache by construction.
// The template is never mutated.
func coldSpec(spec api.RunSpec, n int64) (api.RunSpec, error) {
	cfg := map[string]any{}
	if len(spec.Config) > 0 {
		if err := json.Unmarshal(spec.Config, &cfg); err != nil {
			return api.RunSpec{}, fmt.Errorf("spec config is not a JSON object: %v", err)
		}
		if cfg == nil { // "config": null unmarshals to a nil map
			cfg = map[string]any{}
		}
	}
	noise, _ := cfg["noise"].(map[string]any)
	patched := make(map[string]any, len(noise)+1)
	for k, v := range noise {
		patched[k] = v
	}
	patched["seed"] = n
	cfg["noise"] = patched
	blob, err := json.Marshal(cfg)
	if err != nil {
		return api.RunSpec{}, err
	}
	spec.Config = blob
	return spec, nil
}

// drive fires the configured load and aggregates the results. In
// cluster mode (cfg.cluster non-empty) one client per node is built and
// workers rotate requests across them deterministically, with a second
// metrics group keyed by node feeding the summary's per-node rows.
func drive(cfg config) (*summary, error) {
	met := newBenchMetrics()
	bases := cfg.cluster
	if len(bases) == 0 {
		bases = []string{cfg.base}
	}
	// The default transport pools only 2 idle connections per host, which
	// would make every worker beyond the second pay connection churn —
	// a client-side artifact in the numbers this tool exists to measure.
	// Retries are disabled for the same reason: a load generator reports
	// failures, it does not mask them.
	clients := make([]*client.Client, len(bases))
	for i, base := range bases {
		c, err := client.New(base,
			client.WithHTTPClient(&http.Client{
				Timeout: 5 * time.Minute,
				Transport: &http.Transport{
					MaxIdleConns:        cfg.workers,
					MaxIdleConnsPerHost: cfg.workers,
				},
			}),
			client.WithTimeout(0),
			client.WithRetry(0, 0),
			client.WithPollInterval(time.Millisecond))
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}
	var nodeMet *metrics.Groups
	if len(bases) > 1 {
		nodeMet = metrics.NewGroups(bases, []string{"requests", "errors", "hit", "miss", "partial"},
			"latency_ns", metrics.LatencyBounds())
	}

	var issued atomic.Int64  // budget mode: claimed request slots
	var coldSeq atomic.Int64 // unique seed source for cold runs
	deadline := time.Now().Add(cfg.duration)

	next := func() bool {
		if cfg.requests > 0 {
			return issued.Add(1) <= cfg.requests
		}
		return time.Now().Before(deadline)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Deterministic per-worker op mix: the request schedule is a
			// pure function of flags and worker index, and in cluster mode
			// the node rotation is too.
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for seq := 0; next(); seq++ {
				node := (w + seq) % len(clients)
				rec := func(op opKind, d time.Duration, status int, xcache string) {
					observe(met, int(op), d, status, xcache)
					if nodeMet != nil {
						observe(nodeMet, node, d, status, xcache)
					}
				}
				var err error
				switch {
				case rng.Float64() >= cfg.runFrac:
					err = doFigure(clients[node], cfg, rec)
				case cfg.jobs:
					err = doJob(clients[node], cfg, rec, rng, &coldSeq)
				default:
					err = doRun(clients[node], cfg, rec, rng, &coldSeq)
				}
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sum := summarize(met, elapsed)
	if nodeMet != nil {
		sum.Nodes = make(map[string]opSummary, len(bases))
		for i, base := range bases {
			sum.Nodes[base] = groupSummary(nodeMet, i, elapsed)
		}
	}
	return sum, nil
}

// recorder sinks one completed request's observation; drive wires it to
// the per-op metrics and, in cluster mode, the per-node metrics too.
type recorder func(op opKind, d time.Duration, status int, xcache string)

// observe records one completed request under a metrics group label
// (an op in the per-op group, a node in the per-node group — both use
// the same counter slots).
func observe(met *metrics.Groups, label int, d time.Duration, status int, xcache string) {
	met.Add(label, ctrRequests, 1)
	met.Observe(label, d.Nanoseconds())
	if status >= 400 {
		met.Add(label, ctrErrors, 1)
		return
	}
	switch xcache {
	case "hit":
		met.Add(label, ctrHit, 1)
	case "partial":
		met.Add(label, ctrPartial, 1)
	default:
		met.Add(label, ctrMiss, 1)
	}
}

// apiStatus extracts the HTTP status of a server-rejected request; ok is
// false for transport-level failures, which abort the worker (they are a
// harness problem, not a server measurement).
func apiStatus(err error) (int, bool) {
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		return apiErr.HTTPStatus, true
	}
	return 0, false
}

// benchSpec picks this op's spec: the warm template or a cold variant.
func benchSpec(cfg config, rng *rand.Rand, coldSeq *atomic.Int64) (api.RunSpec, error) {
	if cfg.coldFrac > 0 && rng.Float64() < cfg.coldFrac {
		return coldSpec(cfg.spec, coldSeq.Add(1))
	}
	return cfg.spec, nil
}

// doRun fires one POST /v1/run, cold or warm per the configured ratio.
func doRun(c *client.Client, cfg config, rec recorder, rng *rand.Rand, coldSeq *atomic.Int64) error {
	spec, err := benchSpec(cfg, rng, coldSeq)
	if err != nil {
		return err
	}
	start := time.Now()
	_, cache, err := c.Run(context.Background(), spec)
	if err != nil {
		status, ok := apiStatus(err)
		if !ok {
			return err
		}
		rec(opRun, time.Since(start), status, "")
		return nil
	}
	rec(opRun, time.Since(start), http.StatusOK, cache.State)
	return nil
}

// doJob drives one full async-job lifecycle: submit the spec (cold or
// warm per the configured ratio), drain the NDJSON result stream, then
// wait for the terminal status and classify hit/miss from the job's cache
// counts. The observed latency covers the whole lifecycle, which is the
// number a client of the async API actually experiences.
func doJob(c *client.Client, cfg config, rec recorder, rng *rand.Rand, coldSeq *atomic.Int64) error {
	spec, err := benchSpec(cfg, rng, coldSeq)
	if err != nil {
		return err
	}
	ctx := context.Background()
	start := time.Now()
	sub, err := c.SubmitJob(ctx, spec)
	if err != nil {
		status, ok := apiStatus(err)
		if !ok {
			return err
		}
		rec(opRun, time.Since(start), status, "")
		return nil
	}

	stream, err := c.StreamJob(ctx, sub.ID)
	if err != nil {
		status, ok := apiStatus(err)
		if !ok {
			return err
		}
		rec(opRun, time.Since(start), status, "")
		return nil
	}
	for {
		_, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A trailing error line means the sweep failed; the terminal
			// status below classifies that. Transport failures abort.
			if _, ok := apiStatus(err); !ok {
				stream.Close()
				return err
			}
			break
		}
	}
	stream.Close()

	// The stream ends when the last run is emitted; the terminal status
	// lands moments later, so the wait normally returns first poll.
	info, err := c.WaitJob(ctx, sub.ID)
	if err != nil {
		status, ok := apiStatus(err)
		if !ok {
			return err
		}
		rec(opRun, time.Since(start), status, "")
		return nil
	}
	status := http.StatusOK
	if info.Status != api.JobDone {
		status = http.StatusInternalServerError
	}
	xcache := "miss"
	switch {
	case info.Misses == 0 && info.Hits > 0:
		xcache = "hit"
	case info.Misses > 0 && info.Hits > 0:
		xcache = "partial"
	}
	rec(opRun, time.Since(start), status, xcache)
	return nil
}

// doFigure fires one GET /v1/figures/{id}.
func doFigure(c *client.Client, cfg config, rec recorder) error {
	start := time.Now()
	_, cache, err := c.Figure(context.Background(), cfg.figure, "")
	if err != nil {
		status, ok := apiStatus(err)
		if !ok {
			return err
		}
		rec(opFigure, time.Since(start), status, "")
		return nil
	}
	rec(opFigure, time.Since(start), http.StatusOK, cache.State)
	return nil
}

// opSummary is one row of the report.
type opSummary struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	Partial  int64   `json:"partial"`
	QPS      float64 `json:"qps"`
	HitRate  float64 `json:"hit_rate"`
	P50      int64   `json:"latency_p50_ns"`
	P90      int64   `json:"latency_p90_ns"`
	P99      int64   `json:"latency_p99_ns"`
	MeanNs   float64 `json:"latency_mean_ns"`
}

// summary is the whole report; Total aggregates both ops (its latency
// percentiles merge the per-op histograms bucket-wise).
type summary struct {
	ElapsedSeconds float64              `json:"elapsed_seconds"`
	Workers        int                  `json:"workers"`
	Ops            map[string]opSummary `json:"ops"`
	Total          opSummary            `json:"total"`
	// Nodes breaks the same numbers down by cluster node (with -cluster
	// only), keyed by base URL — the per-node hit ratios show how the
	// ring spreads warm keys across members.
	Nodes map[string]opSummary `json:"nodes,omitempty"`
	// MachinePool is the server's machine-pool traffic over the whole
	// bench (in -inprocess mode only): how many cold runs reused a pooled
	// machine via the reset fast path instead of paying full assembly.
	MachinePool *api.MachinePoolStats `json:"machine_pool,omitempty"`
}

// groupSummary folds one label of a metrics group into a report row.
func groupSummary(met *metrics.Groups, label int, elapsed time.Duration) opSummary {
	lat := met.Histogram(label)
	o := opSummary{
		Requests: met.Value(label, ctrRequests),
		Errors:   met.Value(label, ctrErrors),
		Hits:     met.Value(label, ctrHit),
		Misses:   met.Value(label, ctrMiss),
		Partial:  met.Value(label, ctrPartial),
		P50:      lat.Quantile(0.50),
		P90:      lat.Quantile(0.90),
		P99:      lat.Quantile(0.99),
		MeanNs:   lat.Mean(),
	}
	o.QPS = rate(o.Requests, elapsed)
	o.HitRate = hitRate(o)
	return o
}

// summarize folds the metrics set into the report.
func summarize(met *metrics.Groups, elapsed time.Duration) *summary {
	sum := &summary{
		ElapsedSeconds: elapsed.Seconds(),
		Ops:            make(map[string]opSummary, opCount),
	}
	var merged metrics.HistogramSnapshot
	for op := opKind(0); op < opCount; op++ {
		lat := met.Histogram(int(op))
		o := groupSummary(met, int(op), elapsed)
		sum.Ops[opNames[op]] = o

		sum.Total.Requests += o.Requests
		sum.Total.Errors += o.Errors
		sum.Total.Hits += o.Hits
		sum.Total.Misses += o.Misses
		sum.Total.Partial += o.Partial
		if merged.Counts == nil {
			merged = lat
		} else {
			for i := range merged.Counts {
				merged.Counts[i] += lat.Counts[i]
			}
			merged.Count += lat.Count
			merged.Sum += lat.Sum
		}
	}
	sum.Total.QPS = rate(sum.Total.Requests, elapsed)
	sum.Total.HitRate = hitRate(sum.Total)
	sum.Total.P50 = merged.Quantile(0.50)
	sum.Total.P90 = merged.Quantile(0.90)
	sum.Total.P99 = merged.Quantile(0.99)
	sum.Total.MeanNs = merged.Mean()
	sum.Workers = 0 // set by caller-facing printSummary via cfg
	return sum
}

func rate(n int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}

// hitRate is hits over successful responses (errors excluded; partials
// count as non-hits, which undersells overlapping sweeps but keeps the
// metric honest for the common all-or-nothing case).
func hitRate(o opSummary) float64 {
	ok := o.Hits + o.Misses + o.Partial
	if ok == 0 {
		return 0
	}
	return float64(o.Hits) / float64(ok)
}

// printSummary renders the report as text or JSON.
func printSummary(w io.Writer, cfg config, sum *summary) error {
	sum.Workers = cfg.workers
	if cfg.jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}
	fmt.Fprintf(w, "impact-bench: %d workers, %.1fs against %s\n", cfg.workers, sum.ElapsedSeconds, cfg.base)
	fmt.Fprintf(w, "%-8s %9s %7s %7s %8s %10s %10s %10s\n",
		"op", "requests", "errors", "hit%", "qps", "p50", "p90", "p99")
	row := func(name string, o opSummary) {
		fmt.Fprintf(w, "%-8s %9d %7d %6.1f%% %8.1f %10s %10s %10s\n",
			name, o.Requests, o.Errors, o.HitRate*100, o.QPS,
			time.Duration(o.P50).Round(time.Microsecond),
			time.Duration(o.P90).Round(time.Microsecond),
			time.Duration(o.P99).Round(time.Microsecond))
	}
	for op := opKind(0); op < opCount; op++ {
		row(opNames[op], sum.Ops[opNames[op]])
	}
	row("total", sum.Total)
	if len(sum.Nodes) > 0 {
		// Per-node rows in -cluster order (cfg.base joins the node URLs).
		fmt.Fprintf(w, "per node:\n")
		for _, base := range strings.Split(cfg.base, ",") {
			if o, ok := sum.Nodes[base]; ok {
				row(base, o)
			}
		}
	}
	if p := sum.MachinePool; p != nil {
		fmt.Fprintf(w, "machine pool: %d reset reuses, %d fresh builds, %d shape drops\n",
			p.Hits, p.Misses, p.Drops)
	}
	return nil
}

// fetchMetrics reads the server's /v1/metrics document.
func fetchMetrics(base string) (*api.MetricsDoc, error) {
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/metrics: %s", resp.Status)
	}
	var doc api.MetricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

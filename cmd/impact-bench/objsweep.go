package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/exp/pack"
	"repro/internal/metrics"
)

// The object-count sweep (-objects) measures the one thing an HTTP load
// test cannot isolate: how a store backend's latency scales with the
// number of objects it holds. It bypasses the server entirely — opens
// the backend directly at -data-dir, preloads N synthetic
// content-addressed results from a worker pool, then times M random
// Gets against the populated store. Running it across decades of N
// (10^3 → 10^6) with -store=pack and -store=files reproduces the
// pack engine's headline claim: flat lookup latency where the per-file
// layout degrades with fan-out directory growth and per-entry fsyncs.
//
//	impact-bench -objects 100000 -gets 20000 -store pack  -data-dir /tmp/sweep-pack
//	impact-bench -objects 100000 -gets 20000 -store files -data-dir /tmp/sweep-files
//
// Payloads are deterministic functions of the object number, so a
// re-run over the same data dir preloads nothing new (every Put is
// first-write-wins on an existing key) and still measures Gets — which
// also makes the preload restartable after an interruption.

// objPayload builds the i'th synthetic result: a small report-shaped
// JSON document, deterministic in i, sized like a real quick-scale run
// report (a few hundred bytes).
func objPayload(i int64) []byte {
	rng := rand.New(rand.NewSource(i + 1))
	doc := map[string]any{
		"object":      i,
		"scenario":    "synthetic-objsweep",
		"metric":      rng.Float64(),
		"ci_low":      rng.Float64(),
		"ci_high":     rng.Float64(),
		"samples":     rng.Intn(1 << 16),
		"elapsed_ns":  rng.Int63n(1 << 40),
		"grid_point":  map[string]any{"llc_bytes": 1 << (20 + uint(i%6)), "seed": i},
		"annotations": "synthetic preload object for the store object-count sweep",
	}
	blob, err := json.Marshal(doc)
	if err != nil {
		panic(err) // a map of plain scalars cannot fail to marshal
	}
	return blob
}

// objKey is the content address of the i'th synthetic payload.
func objKey(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// openBackend opens the requested store backend at dir. The pack store
// runs without its background maintainer so the measurement sees only
// the operations under test.
func openBackend(kind, dir string) (exp.ResultStore, func() error, error) {
	switch kind {
	case "pack":
		st, err := pack.Open(dir, pack.WithAuditInterval(0))
		if err != nil {
			return nil, nil, err
		}
		return st, st.Close, nil
	case "files":
		st, err := exp.NewStore(dir)
		if err != nil {
			return nil, nil, err
		}
		return st, func() error { return nil }, nil
	default:
		return nil, nil, fmt.Errorf("unknown store backend %q (want pack or files)", kind)
	}
}

// objSummary is the object-sweep report.
type objSummary struct {
	Store          string  `json:"store"`
	Objects        int64   `json:"objects"`
	PreloadSeconds float64 `json:"preload_seconds"`
	PutsPerSec     float64 `json:"puts_per_sec"`
	Gets           int64   `json:"gets"`
	GetMisses      int64   `json:"get_misses"`
	GetsPerSec     float64 `json:"gets_per_sec"`
	GetP50         int64   `json:"get_p50_ns"`
	GetP90         int64   `json:"get_p90_ns"`
	GetP99         int64   `json:"get_p99_ns"`
	GetMeanNs      float64 `json:"get_mean_ns"`
}

// runObjectSweep preloads the store and measures random Gets.
func runObjectSweep(cfg config, stdout io.Writer) error {
	st, closeStore, err := openBackend(cfg.storeKind, cfg.dataDir)
	if err != nil {
		return err
	}
	defer closeStore()

	met := metrics.NewGroups([]string{"get"}, []string{"requests", "misses"},
		"latency_ns", metrics.LatencyBounds())

	// Preload: workers claim object numbers from a shared counter. Every
	// payload is deterministic, so reruns and races are both harmless —
	// first write wins on the content address.
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= cfg.objects {
					return
				}
				payload := objPayload(i)
				st.Put(context.Background(), objKey(payload), payload)
			}
		}()
	}
	wg.Wait()
	preload := time.Since(start)

	// Measure: each worker probes uniformly random preloaded keys. A miss
	// is counted, not fatal — but the smoke gate below refuses a run where
	// the store lost objects.
	var claimed atomic.Int64
	start = time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for claimed.Add(1) <= cfg.gets {
				payload := objPayload(rng.Int63n(cfg.objects))
				key := objKey(payload)
				t0 := time.Now()
				_, ok := st.Get(context.Background(), key)
				met.Observe(0, time.Since(t0).Nanoseconds())
				met.Add(0, 0, 1)
				if !ok {
					met.Add(0, 1, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	getElapsed := time.Since(start)

	lat := met.Histogram(0)
	sum := objSummary{
		Store:          cfg.storeKind,
		Objects:        cfg.objects,
		PreloadSeconds: preload.Seconds(),
		PutsPerSec:     rate(cfg.objects, preload),
		Gets:           met.Value(0, 0),
		GetMisses:      met.Value(0, 1),
		GetsPerSec:     rate(met.Value(0, 0), getElapsed),
		GetP50:         lat.Quantile(0.50),
		GetP90:         lat.Quantile(0.90),
		GetP99:         lat.Quantile(0.99),
		GetMeanNs:      lat.Mean(),
	}

	if cfg.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "impact-bench: object sweep, store=%s objects=%d workers=%d at %s\n",
			sum.Store, sum.Objects, cfg.workers, cfg.dataDir)
		fmt.Fprintf(stdout, "preload: %.2fs (%.0f puts/s)\n", sum.PreloadSeconds, sum.PutsPerSec)
		fmt.Fprintf(stdout, "get:     %d probes, %d misses, %.0f gets/s, p50 %s  p90 %s  p99 %s\n",
			sum.Gets, sum.GetMisses, sum.GetsPerSec,
			time.Duration(sum.GetP50).Round(time.Microsecond),
			time.Duration(sum.GetP90).Round(time.Microsecond),
			time.Duration(sum.GetP99).Round(time.Microsecond))
	}
	if cfg.smoke {
		if sum.GetMisses > 0 || sum.Gets == 0 {
			return fmt.Errorf("smoke check failed: gets=%d misses=%d", sum.Gets, sum.GetMisses)
		}
		// As in the load-test path: keep -json stdout a single document.
		dst := stdout
		if cfg.jsonOut {
			dst = os.Stderr
		}
		fmt.Fprintln(dst, "smoke: ok")
	}
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/pkg/api"
)

// TestBenchBudgetRun drives a small request budget against an in-process
// server and checks the whole summary contract: exact request accounting,
// no errors, nonzero QPS, warm-path hits, and populated percentiles.
func TestBenchBudgetRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	ts := httptest.NewServer(exp.NewServer(exp.NewEngine(), exp.WithWorkers(2)).Handler())
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-workers", "4",
		"-requests", "24",
		"-run-frac", "0.5",
		"-json",
		"-smoke",
	}, &out)
	if err != nil {
		t.Fatalf("bench run: %v\n%s", err, out.String())
	}

	// In -json mode stdout must be exactly one machine-parseable document
	// (the smoke verdict goes to stderr).
	var sum summary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("stdout not a single JSON document: %v\n%s", err, out.String())
	}
	if sum.Total.Requests != 24 {
		t.Fatalf("total requests = %d, want the full 24 budget", sum.Total.Requests)
	}
	if sum.Total.Errors != 0 {
		t.Fatalf("errors = %d", sum.Total.Errors)
	}
	if sum.Total.QPS <= 0 {
		t.Fatalf("qps = %f", sum.Total.QPS)
	}
	// After the first cold run/figure, every repeat is a cache hit.
	if sum.Total.Hits == 0 {
		t.Fatal("no cache hits in a warm-heavy mix")
	}
	if sum.Total.HitRate <= 0 || sum.Total.HitRate > 1 {
		t.Fatalf("hit rate = %f", sum.Total.HitRate)
	}
	if sum.Total.P50 <= 0 || sum.Total.P99 < sum.Total.P50 {
		t.Fatalf("percentiles p50=%d p99=%d", sum.Total.P50, sum.Total.P99)
	}
	runOp, figOp := sum.Ops["run"], sum.Ops["figure"]
	if runOp.Requests+figOp.Requests != sum.Total.Requests {
		t.Fatalf("op split %d+%d != total %d", runOp.Requests, figOp.Requests, sum.Total.Requests)
	}
	if runOp.Requests == 0 || figOp.Requests == 0 {
		t.Fatalf("mix degenerate: run=%d figure=%d", runOp.Requests, figOp.Requests)
	}
}

// TestBenchColdRequests checks that -cold forces fresh simulations: unique
// noise.seed patches mean cold runs must miss the result cache.
func TestBenchColdRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	ts := httptest.NewServer(exp.NewServer(exp.NewEngine(), exp.WithWorkers(2)).Handler())
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-workers", "2",
		"-requests", "8",
		"-run-frac", "1",
		"-cold", "1",
		"-json",
	}, &out)
	if err != nil {
		t.Fatalf("bench run: %v\n%s", err, out.String())
	}
	var sum summary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	runOp := sum.Ops["run"]
	if runOp.Requests != 8 || runOp.Errors != 0 {
		t.Fatalf("run op: %+v", runOp)
	}
	if runOp.Hits != 0 || runOp.Misses != 8 {
		t.Fatalf("all-cold mix should only miss: %+v", runOp)
	}
}

// TestColdSpecPatch pins the cold-variant construction: the patch adds a
// unique seed without clobbering sibling config fields or the template.
func TestColdSpecPatch(t *testing.T) {
	base, err := api.ParseRunSpec([]byte(
		`{"scenario": "covert-pnm", "config": {"noise": {"events_per_mcycle": 2}, "llc_ways": 8}}`))
	if err != nil {
		t.Fatal(err)
	}
	patched, err := coldSpec(base, 42)
	if err != nil {
		t.Fatal(err)
	}
	var cfg struct {
		Noise struct {
			Seed  int64   `json:"seed"`
			Noise float64 `json:"events_per_mcycle"`
		} `json:"noise"`
		Ways int `json:"llc_ways"`
	}
	if err := json.Unmarshal(patched.Config, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Noise.Seed != 42 || cfg.Noise.Noise != 2 || cfg.Ways != 8 {
		t.Fatalf("patch mangled the config: %s", patched.Config)
	}
	// The patched document still parses as a valid spec server-side.
	blob, err := json.Marshal(patched)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.ParseSpec(blob); err != nil {
		t.Fatalf("patched spec invalid: %v\n%s", err, blob)
	}
	// Distinct seeds produce distinct documents; the template is untouched.
	patched2, err := coldSpec(base, 43)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(patched.Config, patched2.Config) {
		t.Fatal("distinct seeds produced identical specs")
	}
	if bytes.Contains(base.Config, []byte(`"seed"`)) {
		t.Fatal("coldSpec mutated the shared template")
	}
}

// TestBenchClusterMode boots a two-node in-process cluster and drives it
// with -cluster: requests rotate across both nodes, every node takes
// traffic, the per-node rows appear in the summary, and their counters
// add up to the total.
func TestBenchClusterMode(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	const n = 2
	servers := make([]*httptest.Server, n)
	members := make([]cluster.Node, n)
	for i := range servers {
		servers[i] = httptest.NewUnstartedServer(http.NotFoundHandler())
		members[i] = cluster.Node{ID: fmt.Sprintf("n%d", i+1), Addr: servers[i].Listener.Addr().String()}
	}
	urls := make([]string, n)
	for i, ts := range servers {
		store, err := cluster.New(cluster.Config{Self: members[i].ID, Nodes: members})
		if err != nil {
			t.Fatal(err)
		}
		srv := exp.NewServer(exp.NewEngine(exp.WithStore(store)), exp.WithWorkers(2))
		ts.Config.Handler = srv.Handler()
		ts.Start()
		urls[i] = ts.URL
		t.Cleanup(func() {
			ts.Close()
			store.Close()
		})
	}

	var out bytes.Buffer
	err := run([]string{
		"-cluster", urls[0] + "," + urls[1],
		"-workers", "2",
		"-requests", "12",
		"-run-frac", "0.5",
		"-json",
	}, &out)
	if err != nil {
		t.Fatalf("cluster bench run: %v\n%s", err, out.String())
	}
	var sum summary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("stdout not a single JSON document: %v\n%s", err, out.String())
	}
	if sum.Total.Requests != 12 || sum.Total.Errors != 0 {
		t.Fatalf("total: %+v", sum.Total)
	}
	if len(sum.Nodes) != n {
		t.Fatalf("summary has %d node rows, want %d: %v", len(sum.Nodes), n, sum.Nodes)
	}
	var perNode int64
	for _, u := range urls {
		row, ok := sum.Nodes[u]
		if !ok {
			t.Fatalf("no per-node row for %s", u)
		}
		if row.Requests == 0 {
			t.Fatalf("node %s took no traffic: %v", u, sum.Nodes)
		}
		perNode += row.Requests
	}
	if perNode != sum.Total.Requests {
		t.Fatalf("per-node requests %d != total %d", perNode, sum.Total.Requests)
	}
}

// TestBenchFlagValidation pins flag error handling.
func TestBenchFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-workers", "0"},
		{"-run-frac", "1.5"},
		{"-cold", "-0.1"},
		{"-requests", "0", "-duration", "0s"},
		{"-requests", "-5"},
		{"-spec", "/does/not/exist.json"},
		{"-bogus"},
		{"-cluster", "http://a,http://b", "-inprocess"},
		{"-cluster", " , "},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("accepted %v", args)
		}
	}
}

package main

import "testing"

func TestRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness in -short mode")
	}
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("invalid flag accepted")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/figures"
)

func TestRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness in -short mode")
	}
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "=== ") {
		t.Fatal("no rendered reports in output")
	}
}

// TestRunOnlyJSON exercises the single-figure and JSON paths together.
func TestRunOnlyJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "rowbuffer", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var reports []figures.Report
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("output is not report JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 1 || reports[0].ID != "§3.1" || len(reports[0].Rows) == 0 {
		t.Fatalf("unexpected reports: %+v", reports)
	}
}

// TestRunOnlyText renders a single figure as a text table.
func TestRunOnlyText(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "table2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "=== Table 2") {
		t.Fatalf("missing rendered table:\n%s", out.String())
	}
}

// TestRunList prints the registry IDs.
func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	ids := strings.Fields(out.String())
	if len(ids) != len(figures.IDs()) || ids[0] != "rowbuffer" {
		t.Fatalf("listed IDs: %v", ids)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("invalid flag accepted")
	}
	if err := run([]string{"-only", "fig99"}, &out); err == nil {
		t.Fatal("unknown figure ID accepted")
	} else if !strings.Contains(err.Error(), "known:") {
		t.Fatalf("unknown-ID error does not list the registry: %v", err)
	}
	if err := run([]string{"-workers", "-1"}, &out); err == nil {
		t.Fatal("negative worker count accepted")
	}
}

// Command impact-figures regenerates every table and figure of the paper's
// evaluation, printing the paper's values next to this reproduction's.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "impact-figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("impact-figures", flag.ContinueOnError)
	full := fs.Bool("full", false, "run the full-size experiments (slower)")
	workers := fs.Int("workers", 0, "experiment worker pool size (0 = all cores, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale := figures.ScaleQuick
	if *full {
		scale = figures.ScaleFull
	}
	reports, err := figures.RunParallel(scale, *workers)
	if err != nil {
		return err
	}
	for _, rep := range reports {
		rep.Render(os.Stdout)
	}
	return nil
}

// Command impact-figures regenerates every table and figure of the paper's
// evaluation, printing the paper's values next to this reproduction's.
// -only restricts the run to one artifact from the registry (see -list for
// the IDs) and -json emits reports as JSON instead of text tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/figures"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "impact-figures:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("impact-figures", flag.ContinueOnError)
	full := fs.Bool("full", false, "run the full-size experiments (slower)")
	workers := fs.Int("workers", 0, "experiment worker pool size (0 = all cores, 1 = sequential)")
	only := fs.String("only", "", "regenerate a single figure by registry ID (e.g. fig9)")
	asJSON := fs.Bool("json", false, "emit reports as JSON instead of text tables")
	list := fs.Bool("list", false, "list the figure registry IDs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range figures.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}
	scale := figures.ScaleQuick
	if *full {
		scale = figures.ScaleFull
	}

	var reports []figures.Report
	if *only != "" {
		rep, err := figures.Run(*only, scale)
		if err != nil {
			return err
		}
		reports = []figures.Report{rep}
	} else {
		var err error
		reports, err = figures.RunParallel(scale, *workers)
		if err != nil {
			return err
		}
	}

	if *asJSON {
		blob, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		_, err = stdout.Write(append(blob, '\n'))
		return err
	}
	for _, rep := range reports {
		rep.Render(stdout)
	}
	return nil
}

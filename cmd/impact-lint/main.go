// Command impact-lint is the project's multichecker: it runs the
// internal/lint analyzer suite — the mechanical form of the invariants
// this repository's correctness rests on — across the module and fails
// the build on any violation.
//
//	impact-lint ./...              # everything (the `make lint` entry)
//	impact-lint -only atomicwrite ./internal/exp/...
//	impact-lint -list              # what would run, with one-line docs
//
// Exit status: 0 clean, 1 findings, 2 operational failure (a package
// failed to load or type-check).
//
// Suppressions are `//lint:ignore <check>[,<check>] <reason>` on or
// directly above the flagged line; the reason is mandatory and malformed
// directives are themselves findings. See docs/lint.md for the rule
// catalog.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("impact-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("C", ".", "directory to run `go list` from (the module root)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.Lookup(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "impact-lint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "impact-lint: %v\n", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "impact-lint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "impact-lint: %d finding(s) across %d package(s)\n", findings, len(pkgs))
		return 1
	}
	return 0
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRepoIsLintClean is the acceptance smoke: the shipped tree must pass
// its own analyzer suite. Any regression that `make lint` would catch in
// CI fails here first.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("impact-lint on the repo: exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("unexpected findings:\n%s", stdout.String())
	}
}

// TestList pins the multichecker's roster output.
func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d: %s", code, stderr.String())
	}
	for _, name := range []string{"nodeterminism", "atomicwrite", "hotpathalloc", "ctxplumb", "apienvelope"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestUnknownAnalyzer pins the operational-failure exit code.
func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nosuchcheck"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-only nosuchcheck: exit %d, want 2", code)
	}
}

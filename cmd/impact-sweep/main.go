// Command impact-sweep runs a declarative experiment sweep from a JSON
// spec file (see pkg/api.RunSpec and examples/sweep-llc.json) through the
// typed v1 API: the spec is parsed into the shared wire types, submitted
// via the pkg/client SDK, and every report is printed in expansion order.
// By default the tool spins up an in-process server on a loopback
// listener and drives that — a self-contained, one-command sweep — while
// -addr points it at a running impact-server instead. Output is a pure
// function of the spec — the worker count and cache state cannot change a
// byte — and the run summary (cache hits vs. simulated runs, from the
// X-Cache headers) goes to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"

	"repro/internal/exp"
	"repro/pkg/api"
	"repro/pkg/client"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "impact-sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("impact-sweep", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to the sweep spec JSON file (required)")
	addr := fs.String("addr", "", "drive a running impact-server at this base URL (default: in-process server)")
	workers := fs.Int("workers", 0, "in-process simulation pool size (0 = all cores; ignored with -addr)")
	asJSON := fs.Bool("json", false, "emit the full sweep result as JSON instead of text tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("missing -spec <file> (see examples/sweep-llc.json)")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := api.ParseRunSpec(data)
	if err != nil {
		return err
	}

	base := *addr
	if base == "" {
		if *workers < 0 {
			return fmt.Errorf("negative worker count %d", *workers)
		}
		ts := httptest.NewServer(exp.NewServer(exp.NewEngine(), exp.WithWorkers(*workers)).Handler())
		defer ts.Close()
		base = ts.URL
	}
	c, err := client.New(base, client.WithTimeout(0))
	if err != nil {
		return err
	}
	res, cache, err := c.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "impact-sweep: %d runs, %d cache hits, %d simulated\n",
		len(res.Runs), cache.Hits, cache.Misses)

	if *asJSON {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if _, err := stdout.Write(append(blob, '\n')); err != nil {
			return err
		}
		return nil
	}
	for i, r := range res.Runs {
		fmt.Fprintf(stdout, "--- run %d/%d: %s", i+1, len(res.Runs), r.Scenario)
		if len(r.Params) > 0 {
			fmt.Fprintf(stdout, " [%s]", exp.FormatParams(r.Params))
		}
		fmt.Fprintf(stdout, " (scale %s, key %s)\n", r.Scale, r.Key[:12])
		rep, err := exp.DecodeReport(r.Report)
		if err != nil {
			return err
		}
		rep.Render(stdout)
	}
	return nil
}

// Command impact-sweep runs a declarative experiment sweep from a JSON
// spec file (see internal/exp.Spec and examples/sweep-llc.json): the grid
// is expanded into concrete runs, sharded over a worker pool, and every
// report is printed in expansion order. Output is a pure function of the
// spec — the worker count and cache state cannot change a byte — and the
// run summary (cache hits vs. simulated runs) goes to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "impact-sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("impact-sweep", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to the sweep spec JSON file (required)")
	workers := fs.Int("workers", 0, "simulation worker pool size (0 = all cores)")
	asJSON := fs.Bool("json", false, "emit the full sweep result as JSON instead of text tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("missing -spec <file> (see examples/sweep-llc.json)")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := exp.ParseSpec(data)
	if err != nil {
		return err
	}
	res, err := exp.NewEngine().RunSpec(spec, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "impact-sweep: %d runs, %d cache hits, %d simulated\n",
		len(res.Runs), res.Hits, res.Misses)

	if *asJSON {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if _, err := stdout.Write(append(blob, '\n')); err != nil {
			return err
		}
		return nil
	}
	for i, r := range res.Runs {
		fmt.Fprintf(stdout, "--- run %d/%d: %s", i+1, len(res.Runs), r.Scenario)
		if len(r.Params) > 0 {
			fmt.Fprintf(stdout, " [%s]", exp.FormatParams(r.Params))
		}
		fmt.Fprintf(stdout, " (scale %s, key %s)\n", r.Scale, r.Key[:12])
		rep, err := exp.DecodeReport(r.Report)
		if err != nil {
			return err
		}
		rep.Render(stdout)
	}
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// specPath points at the checked-in example sweep (a 3x2 grid, 6 runs).
const specPath = "../../examples/sweep-llc.json"

// TestSweepDeterministicAcrossWorkers is the acceptance-criteria test: the
// example >=6-point grid produces byte-identical output for -workers=1 and
// -workers=8, in both text and JSON modes.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness in -short mode")
	}
	for _, mode := range []struct {
		name string
		args []string
	}{
		{"text", nil},
		{"json", []string{"-json"}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			var one, eight bytes.Buffer
			if err := run(append([]string{"-spec", specPath, "-workers", "1"}, mode.args...), &one); err != nil {
				t.Fatal(err)
			}
			if err := run(append([]string{"-spec", specPath, "-workers", "8"}, mode.args...), &eight); err != nil {
				t.Fatal(err)
			}
			if one.Len() == 0 {
				t.Fatal("sweep produced no output")
			}
			if !bytes.Equal(one.Bytes(), eight.Bytes()) {
				t.Fatalf("output depends on worker count:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", one.String(), eight.String())
			}
		})
	}
}

// TestSweepJSONShape checks the example spec expands to the 6 documented
// runs with populated reports.
func TestSweepJSONShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-spec", specPath, "-workers", "2", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var res struct {
		SpecKey string `json:"spec_key"`
		Runs    []struct {
			Scenario string            `json:"scenario"`
			Params   map[string]string `json:"params"`
			Report   json.RawMessage   `json:"report"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 6 {
		t.Fatalf("example spec expanded to %d runs, want 6", len(res.Runs))
	}
	for _, r := range res.Runs {
		if r.Scenario != "covert-pnm" || len(r.Report) == 0 || len(r.Params) != 2 {
			t.Fatalf("malformed run: %+v", r)
		}
	}
}

// TestSweepFlagErrors pins CLI validation.
func TestSweepFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -spec accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("invalid flag accepted")
	}
	if err := run([]string{"-spec", "no-such-file.json"}, &out); err == nil {
		t.Fatal("missing spec file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"scenario": }`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", bad}, &out); err == nil {
		t.Fatal("malformed spec accepted")
	}
}

package main

import "testing"

func TestRunChannelDispatch(t *testing.T) {
	msg := make([]bool, 64)
	for _, name := range []string{"pnm", "pum", "clflush", "eviction", "dma", "direct"} {
		res, err := runChannel(name, msg, 8<<20, 16, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Bits != 64 {
			t.Fatalf("%s transmitted %d bits", name, res.Bits)
		}
	}
	if _, err := runChannel("bogus", msg, 8<<20, 16, 0); err == nil {
		t.Fatal("unknown channel accepted")
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-sweep", "nonsense", "-bits", "16"}); err == nil {
		t.Fatal("invalid sweep accepted")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Fatal("invalid flag accepted")
	}
}

func TestRunDefaultTable(t *testing.T) {
	if err := run([]string{"-bits", "64", "-channels", "pnm"}); err != nil {
		t.Fatal(err)
	}
}

// Command impact-covert runs the IMPACT covert channels and their baselines
// on the simulated PiM system and prints throughput, error rate and timing
// breakdowns. It can also sweep LLC size (Figure 9 / Figure 2) and LLC ways
// (Figure 3).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "impact-covert:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("impact-covert", flag.ContinueOnError)
	var (
		bits     = fs.Int("bits", 4096, "message length in bits")
		seed     = fs.Uint64("seed", 42, "message seed")
		channels = fs.String("channels", "pnm,pum,clflush,eviction,dma,direct", "comma-separated channel list")
		llcMB    = fs.Int("llc-mb", 8, "LLC size in MiB")
		llcWays  = fs.Int("llc-ways", 16, "LLC associativity")
		sweep    = fs.String("sweep", "", "sweep 'size' (1..128 MiB) or 'ways' (2..128)")
		noise    = fs.Float64("noise", 3, "background noise events per Mcycle")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	msg := core.RandomMessage(*bits, *seed)
	names := strings.Split(*channels, ",")

	switch *sweep {
	case "":
		fmt.Printf("%-16s %12s %10s %14s %14s\n", "channel", "Mb/s", "err%", "sender cyc", "receiver cyc")
		for _, name := range names {
			res, err := runChannel(strings.TrimSpace(name), msg, *llcMB<<20, *llcWays, *noise)
			if err != nil {
				return err
			}
			fmt.Printf("%-16s %12.2f %10.2f %14d %14d\n",
				res.Channel, res.ThroughputMbps, res.ErrorRate*100, res.SenderCycles, res.ReceiverCycles)
		}
	case "size":
		fmt.Printf("%-10s", "LLC(MB)")
		for _, n := range names {
			fmt.Printf(" %14s", strings.TrimSpace(n))
		}
		fmt.Println()
		for _, mb := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
			fmt.Printf("%-10d", mb)
			for _, name := range names {
				res, err := runChannel(strings.TrimSpace(name), msg, mb<<20, *llcWays, *noise)
				if err != nil {
					return err
				}
				fmt.Printf(" %14s", strconv.FormatFloat(res.ThroughputMbps, 'f', 2, 64))
			}
			fmt.Println()
		}
	case "ways":
		fmt.Printf("%-10s", "ways")
		for _, n := range names {
			fmt.Printf(" %14s", strings.TrimSpace(n))
		}
		fmt.Println()
		for _, ways := range []int{2, 4, 8, 16, 32, 64, 128} {
			fmt.Printf("%-10d", ways)
			for _, name := range names {
				res, err := runChannel(strings.TrimSpace(name), msg, *llcMB<<20, ways, *noise)
				if err != nil {
					return err
				}
				fmt.Printf(" %14s", strconv.FormatFloat(res.ThroughputMbps, 'f', 2, 64))
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown sweep %q (want 'size' or 'ways')", *sweep)
	}
	return nil
}

func runChannel(name string, msg []bool, llcBytes, llcWays int, noise float64) (core.Result, error) {
	cfg := sim.DefaultConfig()
	cfg.LLCBytes = llcBytes
	cfg.LLCWays = llcWays
	cfg.Noise.EventsPerMCycle = noise
	m, err := sim.New(cfg)
	if err != nil {
		return core.Result{}, err
	}
	opt := core.Options{}
	switch name {
	case "pnm":
		return core.RunPnM(m, msg, opt)
	case "pum":
		return core.RunPuM(m, msg, opt)
	case "clflush":
		return core.RunDRAMAClflush(m, msg, opt)
	case "eviction":
		return core.RunDRAMAEviction(m, msg, opt)
	case "dma":
		return core.RunDMA(m, msg, opt)
	case "direct":
		return core.RunDirect(m, msg, opt)
	default:
		return core.Result{}, fmt.Errorf("unknown channel %q", name)
	}
}

// Command impact-server serves the experiment engine over HTTP, speaking
// the typed v1 contract defined in pkg/api (drive it with pkg/client):
// POST /v1/run executes a declarative sweep spec (see api.RunSpec), POST
// /v1/jobs enqueues one as an asynchronous job (listed newest-first on
// GET /v1/jobs, polled on GET /v1/jobs/{id}, canceled with DELETE
// /v1/jobs/{id}, streamed as NDJSON on GET /v1/jobs/{id}/stream), GET
// /v1/figures/{id} replays one paper artifact, GET /v1/scenarios lists the
// registry, GET /v1/metrics reports per-route request counters plus
// cache/store/job statistics, and GET /healthz reports build info and
// cache hit/miss counters. Because the simulator is deterministic, every report is
// content-addressed and served from the sharded result cache after its
// first computation, with identical in-flight requests deduplicated onto
// one simulation; with -data-dir the cache is additionally backed by a
// durable disk store, so a restarted server answers previously computed
// sweeps without re-simulating. -store picks the backend: "pack" (the
// default) appends results into large bundle files behind a compact
// needle index — one seek per lookup at any object count, with
// background compaction and a CRC auditor — while "files" keeps the
// legacy one-file-per-result layout. Booting the pack backend on a data
// dir written by -store=files migrates the per-file entries into
// bundles once; the reverse direction is not supported.
//
// With -data-dir the async job registry is durable too: accepted jobs
// journal their spec and lifecycle under <data-dir>/jobs, SIGINT/SIGTERM
// drains gracefully (new submissions get 503, in-flight runs finish and
// land in the store, interrupted jobs journal a resumable state, all
// within -drain-timeout), and a restart on the same data dir re-enqueues
// every job the previous process left unfinished — skipping the runs it
// already computed. A second signal during the drain kills immediately.
// See docs/api.md for the full wire contract and docs/architecture.md for
// the recovery flow.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/exp/pack"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "impact-server:", err)
		os.Exit(1)
	}
}

// parsePeers parses the -peers membership list: comma-separated id=addr
// entries, e.g. "n1=10.0.0.1:8322,n2=10.0.0.2:8322,n3=10.0.0.3:8322".
// Uniqueness and non-emptiness are validated again by the ring; this
// only handles the flag syntax.
func parsePeers(raw string) ([]cluster.Node, error) {
	parts := strings.Split(raw, ",")
	nodes := make([]cluster.Node, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("malformed -peers entry %q (want id=addr)", part)
		}
		nodes = append(nodes, cluster.Node{ID: id, Addr: addr})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-peers %q names no nodes", raw)
	}
	return nodes, nil
}

// run parses flags and serves until the listener fails or a termination
// signal starts the graceful drain. When ready is non-nil the bound
// address is sent on it once the listener is up (tests use this to
// connect to a :0 listener).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("impact-server", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8322", "listen address")
	workers := fs.Int("workers", 0, "per-request simulation pool size (0 = all cores)")
	dataDir := fs.String("data-dir", "", "durable result store + job journal directory (empty = in-memory only)")
	storeKind := fs.String("store", "pack",
		"result store backend: pack (append-only bundles, flat lookup cost) or files (one file per result)")
	maxJobs := fs.Int("max-jobs", 0, "async job registry bound; finished jobs retire FIFO (0 = default 256)")
	drain := fs.Duration("drain-timeout", 30*time.Second,
		"graceful-shutdown budget: in-flight jobs finish and journal before exit")
	nodeID := fs.String("node-id", "", "this node's stable cluster identity (required with -peers)")
	peers := fs.String("peers", "",
		"static cluster membership as id=addr,id=addr,... including this node; "+
			"results shard across members by consistent hashing with async replication")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("negative worker count %d", *workers)
	}
	if *maxJobs < 0 {
		return fmt.Errorf("negative job bound %d", *maxJobs)
	}
	if *drain <= 0 {
		return fmt.Errorf("non-positive drain timeout %s", *drain)
	}

	if *peers != "" && *nodeID == "" {
		return fmt.Errorf("-peers requires -node-id")
	}

	var engineOpts []exp.EngineOption
	serverOpts := []exp.ServerOption{exp.WithWorkers(*workers), exp.WithMaxJobs(*maxJobs)}
	var packStore *pack.Store
	var localStore exp.ResultStore
	if *dataDir != "" {
		// Both backends share the data dir: the pack engine keeps its
		// bundles under <data-dir>/pack (migrating any per-file fan-out it
		// finds beside it — a one-way upgrade), the per-file store fans out
		// over two-hex-digit dirs, and the job journal lives under "jobs";
		// the names cannot collide.
		switch *storeKind {
		case "pack":
			store, err := pack.Open(*dataDir)
			if err != nil {
				return err
			}
			packStore = store
			localStore = store
			fmt.Fprintf(os.Stderr, "impact-server: pack result store at %s\n", store.Dir())
			if n := store.PackStats().Migrated; n > 0 {
				fmt.Fprintf(os.Stderr, "impact-server: migrated %d per-file result(s) into bundles\n", n)
			}
		case "files":
			store, err := exp.NewStore(*dataDir)
			if err != nil {
				return err
			}
			localStore = store
			fmt.Fprintf(os.Stderr, "impact-server: per-file result store at %s\n", store.Dir())
		default:
			return fmt.Errorf("unknown store backend %q (want pack or files)", *storeKind)
		}
		journal, err := exp.NewJournal(filepath.Join(*dataDir, "jobs"))
		if err != nil {
			return err
		}
		serverOpts = append(serverOpts, exp.WithJournal(journal))
	}
	if packStore != nil {
		// Registered before the drain defers run, so it executes after them:
		// in-flight jobs finish writing through first, then the store
		// persists its index and seals the bundles.
		defer packStore.Close()
	}

	// The health document names the node's backend; a diskless node is
	// "memory" regardless of -store.
	storeLabel := "memory"
	if *dataDir != "" {
		storeLabel = *storeKind
	}
	if *peers != "" {
		nodes, err := parsePeers(*peers)
		if err != nil {
			return err
		}
		clusterStore, err := cluster.New(cluster.Config{
			Self:  *nodeID,
			Nodes: nodes,
			Local: localStore,
		})
		if err != nil {
			return err
		}
		// Registered after packStore.Close's defer, so it runs first:
		// replication workers stop before the pack files they write through
		// seal.
		defer clusterStore.Close()
		engineOpts = append(engineOpts, exp.WithStore(clusterStore))
		serverOpts = append(serverOpts,
			exp.WithNodeIdentity(*nodeID, storeLabel, clusterStore.Ring().Len()-1))
		fmt.Fprintf(os.Stderr, "impact-server: cluster node %s in a %d-node ring (R=%d)\n",
			*nodeID, clusterStore.Ring().Len(), cluster.DefaultReplicas)
	} else {
		if localStore != nil {
			engineOpts = append(engineOpts, exp.WithStore(localStore))
		}
		id := *nodeID
		if id == "" {
			id = "solo"
		}
		serverOpts = append(serverOpts, exp.WithNodeIdentity(id, storeLabel, 0))
	}
	engine := exp.NewEngine(engineOpts...)
	expSrv := exp.NewServer(engine, serverOpts...)
	if n := expSrv.JobsStats().Resumed; n > 0 {
		fmt.Fprintf(os.Stderr, "impact-server: resumed %d unfinished job(s) from the journal\n", n)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "impact-server: listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	srv := &http.Server{
		Handler: expSrv.Handler(),
		// Bound how long a client may dribble headers/body so stalled
		// connections cannot pin goroutines and file descriptors.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Restore default signal handling: a second SIGINT/SIGTERM during the
	// drain kills the process immediately.
	stop()

	fmt.Fprintf(os.Stderr, "impact-server: draining (up to %s): in-flight jobs finish and journal\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Quiesce the job registry before the HTTP listener: job streams hold
	// their connections until the job settles, so draining jobs first is
	// what lets srv.Shutdown below see those connections go idle.
	if err := expSrv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "impact-server: drain incomplete:", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		srv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	<-errc // Serve has returned http.ErrServerClosed
	fmt.Fprintln(os.Stderr, "impact-server: drained cleanly")
	return nil
}

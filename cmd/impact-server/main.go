// Command impact-server serves the experiment engine over HTTP, speaking
// the typed v1 contract defined in pkg/api (drive it with pkg/client):
// POST /v1/run executes a declarative sweep spec (see api.RunSpec), POST
// /v1/jobs enqueues one as an asynchronous job (listed newest-first on
// GET /v1/jobs, polled on GET /v1/jobs/{id}, canceled with DELETE
// /v1/jobs/{id}, streamed as NDJSON on GET /v1/jobs/{id}/stream), GET
// /v1/figures/{id} replays one paper artifact, GET /v1/scenarios lists the
// registry, GET /v1/metrics reports per-route request counters plus
// cache/store/job statistics, and GET /healthz reports build info and
// cache hit/miss counters. Because the simulator is deterministic, every report is
// content-addressed and served from the sharded result cache after its
// first computation, with identical in-flight requests deduplicated onto
// one simulation; with -data-dir the cache is additionally backed by a
// durable disk store, so a restarted server answers previously computed
// sweeps without re-simulating. See docs/api.md for the full wire
// contract and cmd/impact-bench for the matching load generator.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "impact-server:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until the listener fails. When ready is
// non-nil the bound address is sent on it once the listener is up (tests
// use this to connect to a :0 listener).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("impact-server", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8322", "listen address")
	workers := fs.Int("workers", 0, "per-request simulation pool size (0 = all cores)")
	dataDir := fs.String("data-dir", "", "durable result store directory (empty = in-memory cache only)")
	maxJobs := fs.Int("max-jobs", 0, "async job registry bound; finished jobs retire FIFO (0 = default 256)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("negative worker count %d", *workers)
	}
	if *maxJobs < 0 {
		return fmt.Errorf("negative job bound %d", *maxJobs)
	}

	var engineOpts []exp.EngineOption
	if *dataDir != "" {
		store, err := exp.NewStore(*dataDir)
		if err != nil {
			return err
		}
		engineOpts = append(engineOpts, exp.WithStore(store))
		fmt.Fprintf(os.Stderr, "impact-server: durable result store at %s\n", store.Dir())
	}
	engine := exp.NewEngine(engineOpts...)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "impact-server: listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	srv := &http.Server{
		Handler: exp.NewServer(engine, exp.WithWorkers(*workers), exp.WithMaxJobs(*maxJobs)).Handler(),
		// Bound how long a client may dribble headers/body so stalled
		// connections cannot pin goroutines and file descriptors.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
	}
	return srv.Serve(ln)
}

//go:build unix

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/pkg/api"
)

// seedSpecDoc returns a spec document with n unique cold runs.
func seedSpecDoc(n int) string {
	seeds := make([]string, n)
	for i := range seeds {
		seeds[i] = fmt.Sprint(5000 + i)
	}
	return `{"scenario": "covert-pnm", "grid": {"noise.seed": [` + strings.Join(seeds, ", ") + `]}}`
}

// httpJSON issues one request against base and decodes the JSON body.
func httpJSON(t *testing.T, method, url string, body string, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", api.ContentTypeJSON)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(blob, out); err != nil {
			t.Fatalf("decoding %s %s: %v\n%s", method, url, err, blob)
		}
	}
	return resp.StatusCode, resp.Header
}

// pollUntil polls the job until cond holds, failing on the deadline.
func pollUntil(t *testing.T, base, id, what string, cond func(api.JobInfo) bool) api.JobInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var info api.JobInfo
		code, _ := httpJSON(t, http.MethodGet, base+"/v1/jobs/"+id, "", &info)
		if code == http.StatusOK && cond(info) {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s (last status %d, info %+v)", what, code, info)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGracefulSigtermDrainsAndResumes sends a real SIGTERM to the serving
// process mid-sweep: run() must drain (in-flight work journaled, clean nil
// return), and a second run() on the same data dir must resume the
// interrupted job under the same ID, skipping every run the first process
// already stored.
func TestGracefulSigtermDrainsAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("signal/network test in -short mode")
	}
	dataDir := t.TempDir()
	boot := func() (string, chan error) {
		ready := make(chan string, 1)
		errc := make(chan error, 1)
		go func() {
			errc <- run([]string{"-addr", "localhost:0", "-workers", "1",
				"-data-dir", dataDir, "-drain-timeout", "30s"}, ready)
		}()
		select {
		case addr := <-ready:
			return "http://" + addr, errc
		case err := <-errc:
			t.Fatalf("server exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("server never became ready")
		}
		panic("unreachable")
	}

	base, errc := boot()
	spec := seedSpecDoc(64)
	var queued api.JobInfo
	if code, _ := httpJSON(t, http.MethodPost, base+"/v1/jobs", spec, &queued); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	// Let the single worker land at least one run, then pull the plug.
	pollUntil(t, base, queued.ID, "first run to complete", func(i api.JobInfo) bool {
		return i.Completed >= 1
	})
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}

	// Restart on the same data dir: the job comes back under its ID and
	// finishes, re-simulating only the runs the first process never stored.
	base2, errc2 := boot()
	final := pollUntil(t, base2, queued.ID, "resumed job to finish", func(i api.JobInfo) bool {
		return api.JobTerminal(i.Status)
	})
	if final.Status != api.JobDone || !final.Resumed || final.Completed != 64 {
		t.Fatalf("resumed job = %+v", final)
	}
	var doc api.MetricsDoc
	if code, _ := httpJSON(t, http.MethodGet, base2+"/v1/metrics", "", &doc); code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	if doc.Jobs.Resumed != 1 || doc.Jobs.RunsSkippedOnResume < 1 {
		t.Fatalf("jobs metrics = %+v, want resumed=1 and runs_skipped_on_resume>0", doc.Jobs)
	}
	if doc.Jobs.RunsSkippedOnResume+int64(final.Misses) != 64 {
		t.Fatalf("skipped %d + re-simulated %d != 64", doc.Jobs.RunsSkippedOnResume, final.Misses)
	}

	// Drain the second server too, so nothing is still serving (or
	// journaling) when the test's temp dir is torn down.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc2:
		if err != nil {
			t.Fatalf("second drain exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("second server did not drain after SIGTERM")
	}
}

// TestRecoverySmoke is the kill-9 end-to-end, run once per store
// backend: build the real binary, kill it -9 mid-job (no drain, no
// journal flush beyond what already landed), restart it on the same data
// dir, and require the job to complete with a sweep byte-identical to
// the synchronous answer. For the pack backend the kill lands between
// index writes, so the restart exercises the bundle tail scan on the
// real binary. Wired into CI as `make recovery-smoke`.
func TestRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "impact-server")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building server: %v\n%s", err, out)
	}
	for _, backend := range []string{"pack", "files"} {
		t.Run(backend, func(t *testing.T) { recoverySmoke(t, bin, backend) })
	}
}

func recoverySmoke(t *testing.T, bin, backend string) {
	dataDir := filepath.Join(t.TempDir(), "data")

	// start launches the binary and scrapes the listen address off stderr.
	start := func() (*exec.Cmd, string) {
		cmd := exec.Command(bin, "-addr", "localhost:0", "-workers", "2",
			"-data-dir", dataDir, "-store", backend)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		addr := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				if rest, ok := strings.CutPrefix(sc.Text(), "impact-server: listening on http://"); ok {
					addr <- rest
				}
			}
		}()
		select {
		case a := <-addr:
			return cmd, "http://" + a
		case <-time.After(10 * time.Second):
			t.Fatal("server never reported its address")
		}
		panic("unreachable")
	}

	cmd, base := start()
	spec := seedSpecDoc(32)
	var queued api.JobInfo
	if code, _ := httpJSON(t, http.MethodPost, base+"/v1/jobs", spec, &queued); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	pollUntil(t, base, queued.ID, "mid-sweep progress", func(i api.JobInfo) bool {
		return i.Completed >= 1
	})
	// kill -9: no graceful anything. Whatever reached disk is the truth.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	_, base2 := start()
	final := pollUntil(t, base2, queued.ID, "recovered job to finish", func(i api.JobInfo) bool {
		return api.JobTerminal(i.Status)
	})
	if final.Status != api.JobDone || !final.Resumed || final.Completed != 32 {
		t.Fatalf("recovered job = %+v", final)
	}

	// Byte identity: every stream line must equal the corresponding run of
	// the synchronous sweep, and the spec keys must agree — a crash plus
	// recovery is invisible in the result bytes.
	resp, err := http.Get(base2 + "/v1/jobs/" + queued.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	streamBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stream = %d (%v)", resp.StatusCode, err)
	}
	lines := bytes.Split(bytes.TrimSuffix(streamBody, []byte("\n")), []byte("\n"))
	var sweep struct {
		SpecKey string            `json:"spec_key"`
		Runs    []json.RawMessage `json:"runs"`
	}
	if code, _ := httpJSON(t, http.MethodPost, base2+"/v1/run", spec, &sweep); code != http.StatusOK {
		t.Fatalf("sync run = %d", code)
	}
	if sweep.SpecKey != final.SpecKey {
		t.Fatalf("spec keys differ: job %q vs sweep %q", final.SpecKey, sweep.SpecKey)
	}
	if len(lines) != len(sweep.Runs) {
		t.Fatalf("stream has %d lines, sweep has %d runs", len(lines), len(sweep.Runs))
	}
	for i := range lines {
		want := bytes.TrimSpace([]byte(sweep.Runs[i]))
		if !bytes.Equal(lines[i], want) {
			t.Fatalf("stream line %d differs from sweep run:\n got %s\nwant %s", i, lines[i], want)
		}
	}
	var doc api.MetricsDoc
	if code, _ := httpJSON(t, http.MethodGet, base2+"/v1/metrics", "", &doc); code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	if doc.Jobs.RunsSkippedOnResume < 1 {
		t.Fatalf("runs_skipped_on_resume = %d, want > 0", doc.Jobs.RunsSkippedOnResume)
	}
	// /v1/metrics exposes the section for the configured backend only.
	switch backend {
	case "pack":
		if doc.Pack == nil || doc.Store != nil {
			t.Fatalf("pack backend metrics: pack=%v store=%v", doc.Pack, doc.Store)
		}
		if doc.Pack.IndexEntries < 1 || doc.Pack.Hits < 1 {
			t.Fatalf("pack section = %+v, want live entries and hits", *doc.Pack)
		}
	case "files":
		if doc.Store == nil || doc.Pack != nil {
			t.Fatalf("files backend metrics: pack=%v store=%v", doc.Pack, doc.Store)
		}
	}
}

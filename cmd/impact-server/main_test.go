package main

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

// TestServeEndToEnd boots the real binary entry point on an ephemeral
// port and exercises one cold/warm request pair over TCP.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("network smoke test in -short mode")
	}
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run([]string{"-addr", "localhost:0", "-workers", "2"}, ready) }()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	get := func(path string) (int, string, http.Header) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, _ := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d: %s", code, body)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz body: %s (%v)", body, err)
	}

	code, cold, hdr := get("/v1/figures/table2")
	if code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("cold figure = %d, X-Cache %q", code, hdr.Get("X-Cache"))
	}
	code, warm, hdr := get("/v1/figures/table2")
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("warm figure = %d, X-Cache %q", code, hdr.Get("X-Cache"))
	}
	if cold != warm {
		t.Fatal("cached figure differs from cold figure")
	}
}

// TestRunBadFlags pins flag validation.
func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, nil); err == nil {
		t.Fatal("invalid flag accepted")
	}
	if err := run([]string{"-workers", "-3"}, nil); err == nil {
		t.Fatal("negative worker count accepted")
	}
}

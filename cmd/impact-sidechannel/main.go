// Command impact-sidechannel runs the genomic read-mapping side channel of
// Section 4.3, sweeping the number of DRAM banks holding the seeding hash
// table (Figure 11).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/genomics"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "impact-sidechannel:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("impact-sidechannel", flag.ContinueOnError)
	var (
		refLen = fs.Int("ref-len", 1<<20, "reference genome length (bases)")
		reads  = fs.Int("reads", 4000, "number of reads the victim maps")
		sweeps = fs.Int("sweeps", 6, "attacker sweeps over all banks")
		seed   = fs.Uint64("seed", 7, "experiment seed")
		single = fs.Int("banks", 0, "run a single bank count instead of the Figure 11 sweep")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	bankCounts := []int{1024, 2048, 4096, 8192}
	if *single > 0 {
		bankCounts = []int{*single}
	}
	fmt.Printf("%-8s %12s %10s %14s %14s\n", "banks", "Mb/s", "err%", "reads mapped", "victim acc%")
	for _, banks := range bankCounts {
		res, err := RunOnce(banks, *refLen, *reads, *sweeps, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %12.2f %10.2f %14d %14.2f\n",
			banks, res.ThroughputMbps, res.ErrorRate*100, res.VictimReadsMapped, res.VictimAccuracy*100)
	}
	return nil
}

// RunOnce builds a machine with the given bank count and runs one attack.
func RunOnce(banks, refLen, numReads, sweeps int, seed uint64) (core.SideChannelResult, error) {
	cfg := sim.DefaultConfig()
	cfg.DRAM = cfg.DRAM.WithBanks(banks)
	// Background activity scales with machine size: a PiM system with 8x
	// the banks hosts proportionally more co-running processes, which is
	// what makes the attack "more prone to noise" as banks grow (§6.3).
	cfg.Noise.EventsPerMCycle = 90 * float64(banks) / 1024
	m, err := sim.New(cfg)
	if err != nil {
		return core.SideChannelResult{}, err
	}

	ref := genomics.NewReference(refLen, seed)
	idx, err := genomics.BuildIndex(ref, genomics.DefaultIndexConfig())
	if err != nil {
		return core.SideChannelResult{}, err
	}
	rds, err := genomics.SampleReads(ref, numReads, 150, 0.02, seed+1)
	if err != nil {
		return core.SideChannelResult{}, err
	}
	victim, err := genomics.NewMapper(m, m.Core(2), ref, idx, genomics.DefaultBankLayout(banks), rds, genomics.DefaultCosts())
	if err != nil {
		return core.SideChannelResult{}, err
	}
	return core.RunSideChannel(m, victim, core.SideChannelOptions{Sweeps: sweeps})
}

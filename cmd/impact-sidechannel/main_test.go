package main

import "testing"

func TestRunOnceSmall(t *testing.T) {
	res, err := RunOnce(64, 1<<16, 500, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Banks != 64 || res.Probes == 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestRunSingleBankCount(t *testing.T) {
	if err := run([]string{"-banks", "64", "-ref-len", "65536", "-reads", "500", "-sweeps", "2"}); err != nil {
		t.Fatal(err)
	}
}

// Defense tuning: explore the ACT (adaptive constant-time) design space of
// the paper's Section 7.4 — the trade-off between workload slowdown and
// covert-channel throughput reduction as the penalty window and conflict
// threshold vary.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "defensetuning:", err)
		os.Exit(1)
	}
}

func run() error {
	msg := core.RandomMessage(2048, 5)
	baseline, err := attackUnder(memctrl.DefaultConfig(), msg)
	if err != nil {
		return err
	}

	configs := []memctrl.ACTConfig{
		{EpochCycles: 2600, ConflictThreshold: 1, PenaltyEpochs: 2},
		{EpochCycles: 2600, ConflictThreshold: 1, PenaltyEpochs: 8},
		{EpochCycles: 2600, ConflictThreshold: 1, PenaltyEpochs: 64},
		{EpochCycles: 2600, ConflictThreshold: 1, PenaltyEpochs: 512},
		{EpochCycles: 2600, ConflictThreshold: 1, PenaltyEpochs: 4000},
		{EpochCycles: 2600, ConflictThreshold: 5, PenaltyEpochs: 64},
		{EpochCycles: 10400, ConflictThreshold: 1, PenaltyEpochs: 64},
	}

	suite := workloads.SmallSuiteConfig()
	fmt.Printf("%-42s %14s %16s\n", "ACT configuration", "slowdown", "attack residual")
	for _, act := range configs {
		mem := memctrl.DefaultConfig()
		mem.Defense = memctrl.DefenseAdaptive
		mem.ACT = act

		rows, err := workloads.RunDefenseComparison(suite, []memctrl.Config{mem})
		if err != nil {
			return err
		}
		attack, err := attackUnder(mem, msg)
		if err != nil {
			return err
		}
		residual := 0.0
		if baseline.EffectiveThroughputMbps > 0 {
			residual = 100 * attack.EffectiveThroughputMbps / baseline.EffectiveThroughputMbps
		}
		fmt.Printf("epoch=%5dcyc threshold=%d penalty=%4d epochs %13.3fx %15.1f%%\n",
			act.EpochCycles, act.ConflictThreshold, act.PenaltyEpochs, rows[0].GMean, residual)
	}
	fmt.Println("\nslowdown = GMEAN normalized execution time over BC/BFS/CC/TC/XS")
	fmt.Println("attack residual = IMPACT-PnM effective throughput vs. an undefended system")
	return nil
}

func attackUnder(mem memctrl.Config, msg []bool) (core.Result, error) {
	cfg := sim.DefaultConfig()
	cfg.Mem = mem
	m, err := sim.New(cfg)
	if err != nil {
		return core.Result{}, err
	}
	return core.RunPnM(m, msg, core.Options{})
}

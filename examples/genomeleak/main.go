// Genome leak: run the end-to-end side channel of the paper's Section 4.3.
// A victim process maps synthetic sequencing reads against a reference
// genome using PiM-offloaded seeding; a co-located attacker sweeps the DRAM
// banks holding the seeding hash table and reconstructs which buckets the
// victim touched — the raw material for a DNA imputation attack.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/genomics"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "genomeleak:", err)
		os.Exit(1)
	}
}

func run() error {
	const banks = 1024

	cfg := sim.DefaultConfig()
	cfg.DRAM = cfg.DRAM.WithBanks(banks)
	cfg.Noise.EventsPerMCycle = 90
	machine, err := sim.New(cfg)
	if err != nil {
		return err
	}

	// The victim's world: a reference genome, its seeding index spread
	// over DRAM banks, and a batch of reads to map.
	ref := genomics.NewReference(1<<20, 2024)
	idx, err := genomics.BuildIndex(ref, genomics.DefaultIndexConfig())
	if err != nil {
		return err
	}
	reads, err := genomics.SampleReads(ref, 20000, 150, 0.02, 2025)
	if err != nil {
		return err
	}
	victim, err := genomics.NewMapper(
		machine, machine.Core(2), ref, idx, genomics.DefaultBankLayout(banks), reads, genomics.DefaultCosts())
	if err != nil {
		return err
	}

	// The attacker: core 3, continuously sweeping all banks.
	res, err := core.RunSideChannel(machine, victim, core.SideChannelOptions{Sweeps: 6})
	if err != nil {
		return err
	}

	fmt.Println("victim: genomic read mapping with PiM-offloaded seeding")
	fmt.Printf("  reads mapped: %d (%.1f%% placed within 64 bp of the true locus)\n",
		res.VictimReadsMapped, res.VictimAccuracy*100)
	fmt.Println("attacker: row-buffer probes over the shared hash table")
	fmt.Printf("  leakage: %.2f Mb/s at %.2f%% error over %d banks\n",
		res.ThroughputMbps, res.ErrorRate*100, res.Banks)
	fmt.Printf("  %d probes, %d correct, %d false positives, %d false negatives\n",
		res.Probes, res.Correct, res.FalsePositives, res.FalseNegatives)
	fmt.Println("each correct probe tells the attacker whether the victim's query genome")
	fmt.Println("contains a seed hashing into that bank's hash-table rows — the input to")
	fmt.Println("a completion/imputation attack on the private genome (paper §4.3).")
	return nil
}

// Quickstart: send a text message between two processes through the DRAM
// row buffer using the IMPACT-PnM covert channel on the simulated
// PiM-enabled system.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Build the paper's Table 2 system: 4 cores, 3-level caches, 16-bank
	// DDR4 with PEI and RowClone engines.
	machine, err := sim.New(sim.DefaultConfig())
	if err != nil {
		return err
	}

	// The sender encodes the message as bits; each 16-bit batch maps one
	// bit per DRAM bank, encoded as a row-buffer conflict (1) or not (0).
	secret := "Hello, PiM! Row buffers leak."
	bits := core.BitsFromBytes([]byte(secret))

	res, err := core.RunPnM(machine, bits, core.Options{})
	if err != nil {
		return err
	}

	received := string(core.BytesFromBits(res.Decoded))
	fmt.Printf("sent:      %q\n", secret)
	fmt.Printf("received:  %q\n", received)
	fmt.Printf("channel:   %.2f Mb/s, error rate %.2f%%, %d simulated cycles\n",
		res.ThroughputMbps, res.ErrorRate*100, res.Cycles)
	return nil
}

// Covert-channel comparison: transmit a 1 KiB message over every channel
// variant the paper evaluates (IMPACT-PnM, IMPACT-PuM, DRAMA-clflush,
// DRAMA-eviction, DMA) and show the per-bank latency trace a receiver sees
// while decoding one batch — the view of the paper's Figure 8.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "covertchannel:", err)
		os.Exit(1)
	}
}

func run() error {
	msg := core.RandomMessage(8192, 1234)

	type channel struct {
		name string
		run  func(*sim.Machine, []bool, core.Options) (core.Result, error)
	}
	channels := []channel{
		{"IMPACT-PnM", core.RunPnM},
		{"IMPACT-PuM", core.RunPuM},
		{"DRAMA-clflush", core.RunDRAMAClflush},
		{"DRAMA-eviction", core.RunDRAMAEviction},
		{"DMA", core.RunDMA},
	}

	fmt.Printf("%-16s %10s %8s %12s\n", "channel", "Mb/s", "err%", "cycles")
	for _, ch := range channels {
		m, err := sim.New(sim.DefaultConfig())
		if err != nil {
			return err
		}
		res, err := ch.run(m, msg, core.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %10.2f %8.2f %12d\n", res.Channel, res.ThroughputMbps, res.ErrorRate*100, res.Cycles)
	}

	// Figure 8 view: one 16-bit batch with the receiver's raw latencies.
	fmt.Println("\nreceiver latency trace for one 16-bit PnM batch (threshold 150):")
	m, err := sim.New(sim.DefaultConfig())
	if err != nil {
		return err
	}
	poc := []bool{true, true, true, false, false, true, false, false, true, true, true, false, false, true, false, false}
	res, err := core.RunPnM(m, poc, core.Options{RecordLatencies: true})
	if err != nil {
		return err
	}
	for i, lat := range res.Latencies {
		bit := 0
		if poc[i] {
			bit = 1
		}
		decoded := 0
		if res.Decoded[i] {
			decoded = 1
		}
		fmt.Printf("  bank %2d: sent %d, measured %3d cycles, decoded %d\n", i, bit, lat, decoded)
	}
	return nil
}
